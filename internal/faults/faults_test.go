package faults

import (
	"testing"
	"time"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.InvokeFails("w", time.Second) {
		t.Fatal("nil injector failed an invocation")
	}
	if f := in.ColdStartFactor("w", 0); f != 1 {
		t.Fatalf("nil injector stretched a cold start: %v", f)
	}
	if d := in.ReclaimAfter("w", 0); d != 0 {
		t.Fatalf("nil injector scheduled a reclaim: %v", d)
	}
	if d := in.KVDelay("set", "k", 0, time.Millisecond); d != 0 {
		t.Fatalf("nil injector delayed a KV op: %v", d)
	}
	if d := in.MQDelay("publish", "q", 0, time.Millisecond); d != 0 {
		t.Fatalf("nil injector delayed a broker op: %v", d)
	}
	if m := in.Metrics(); m != (Metrics{}) {
		t.Fatalf("nil injector has metrics: %+v", m)
	}
}

func TestZeroSpecDisabled(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Fatal("zero spec reports enabled")
	}
	if !(Spec{ReclaimProb: 0.1}).Enabled() {
		t.Fatal("reclaim-only spec reports disabled")
	}
	in := New(Spec{Seed: 3})
	if in.InvokeFails("w", time.Second) || in.ColdStartFactor("w", 0) != 1 || in.ReclaimAfter("w", 0) != 0 {
		t.Fatal("zero-probability spec injected a fault")
	}
}

// TestDeterministicDraws is the core property: decisions are a pure
// function of (seed, identity), independent of call order.
func TestDeterministicDraws(t *testing.T) {
	spec := Spec{
		Seed: 42, InvokeFailProb: 0.3, StragglerProb: 0.3, ReclaimProb: 0.3,
		KVFailProb: 0.2, KVSlowProb: 0.2, MQFailProb: 0.2, MQSlowProb: 0.2,
	}
	a, b := New(spec), New(spec)

	// Interrogate b in reverse order; answers must match a's.
	type probe struct {
		name string
		at   time.Duration
	}
	probes := []probe{{"w0", 0}, {"w1", 0}, {"w0", time.Second}, {"sup", 5 * time.Second}}
	fails := make([]bool, len(probes))
	factors := make([]float64, len(probes))
	lives := make([]time.Duration, len(probes))
	kv := make([]time.Duration, len(probes))
	for i, p := range probes {
		fails[i] = a.InvokeFails(p.name, p.at)
		factors[i] = a.ColdStartFactor(p.name, p.at)
		lives[i] = a.ReclaimAfter(p.name, p.at)
		kv[i] = a.KVDelay("get", p.name, p.at, time.Millisecond)
	}
	for i := len(probes) - 1; i >= 0; i-- {
		p := probes[i]
		if got := b.InvokeFails(p.name, p.at); got != fails[i] {
			t.Fatalf("InvokeFails(%v) order-dependent", p)
		}
		if got := b.ColdStartFactor(p.name, p.at); got != factors[i] {
			t.Fatalf("ColdStartFactor(%v) order-dependent", p)
		}
		if got := b.ReclaimAfter(p.name, p.at); got != lives[i] {
			t.Fatalf("ReclaimAfter(%v) order-dependent", p)
		}
		if got := b.KVDelay("get", p.name, p.at, time.Millisecond); got != kv[i] {
			t.Fatalf("KVDelay(%v) order-dependent", p)
		}
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	mk := func(seed uint64) int {
		in := New(Spec{Seed: seed, InvokeFailProb: 0.5})
		n := 0
		for i := 0; i < 200; i++ {
			if in.InvokeFails("w", time.Duration(i)*time.Millisecond) {
				n++
			}
		}
		return n
	}
	// Different seeds should produce different (but similarly sized)
	// failure sets; identical seeds identical counts.
	if mk(1) != mk(1) {
		t.Fatal("same seed, different counts")
	}
	a, b := mk(1), mk(2)
	if a == 0 || b == 0 || a == 200 || b == 200 {
		t.Fatalf("degenerate failure counts: %d, %d", a, b)
	}
}

func TestFailureRateApproximatesProbability(t *testing.T) {
	in := New(Spec{Seed: 9, InvokeFailProb: 0.25})
	n := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if in.InvokeFails("w", time.Duration(i)*time.Millisecond) {
			n++
		}
	}
	rate := float64(n) / trials
	if rate < 0.20 || rate > 0.30 {
		t.Fatalf("empirical failure rate %.3f far from 0.25", rate)
	}
	if m := in.Metrics(); m.InvokeFailures != int64(n) {
		t.Fatalf("metrics count %d, observed %d", m.InvokeFailures, n)
	}
}

func TestStragglerFactorHeavyTailedAndBounded(t *testing.T) {
	in := New(Spec{Seed: 4, StragglerProb: 1})
	var sum float64
	maxFactor := 0.0
	const trials = 2000
	for i := 0; i < trials; i++ {
		f := in.ColdStartFactor("w", time.Duration(i)*time.Millisecond)
		if f < 1 || f > DefaultStragglerCap {
			t.Fatalf("factor %v out of [1, %v]", f, DefaultStragglerCap)
		}
		if f > maxFactor {
			maxFactor = f
		}
		sum += f
	}
	mean := sum / trials
	// Pareto(alpha=1.5) has mean 3; the cap pulls it down slightly.
	if mean < 2 || mean > 4 {
		t.Fatalf("mean straggler factor %.2f implausible for Pareto(1.5)", mean)
	}
	if maxFactor < 10 {
		t.Fatalf("max factor %.2f shows no heavy tail", maxFactor)
	}
}

func TestReclaimLifetimes(t *testing.T) {
	in := New(Spec{Seed: 5, ReclaimProb: 1, ReclaimMeanLife: time.Minute})
	var sum time.Duration
	const trials = 2000
	for i := 0; i < trials; i++ {
		life := in.ReclaimAfter("w", time.Duration(i)*time.Millisecond)
		if life < minReclaimLife {
			t.Fatalf("lifetime %v below floor", life)
		}
		sum += life
	}
	mean := sum / trials
	if mean < 45*time.Second || mean > 80*time.Second {
		t.Fatalf("mean lifetime %v far from the 1-minute mean", mean)
	}
	if m := in.Metrics(); m.ReclaimsScheduled != trials {
		t.Fatalf("ReclaimsScheduled = %d, want %d", m.ReclaimsScheduled, trials)
	}
}

func TestOpDelayChargesRetriesAndSpikes(t *testing.T) {
	// Certain failure: every op pays at least one penalty + re-execution.
	in := New(Spec{Seed: 6, KVFailProb: 1, KVRetryPenalty: 10 * time.Millisecond})
	base := 2 * time.Millisecond
	d := in.KVDelay("set", "k", 0, base)
	if d < 12*time.Millisecond {
		t.Fatalf("certain failure delayed only %v", d)
	}
	if d > maxOpRetries*(10*time.Millisecond+base) {
		t.Fatalf("delay %v exceeds the retry cap", d)
	}

	// Certain spike: exactly (factor-1) * base extra.
	in2 := New(Spec{Seed: 6, KVSlowProb: 1, KVSlowFactor: 5})
	if d := in2.KVDelay("get", "k", 0, base); d != 4*base {
		t.Fatalf("spike delay = %v, want %v", d, 4*base)
	}

	m := in.Metrics()
	if m.KVFailures == 0 {
		t.Fatal("KV failures not counted")
	}
	if m2 := in2.Metrics(); m2.KVSlowOps != 1 {
		t.Fatalf("KVSlowOps = %d, want 1", m2.KVSlowOps)
	}
}

func TestDomainIndependence(t *testing.T) {
	// The same key and time must not produce correlated decisions across
	// domains (e.g. every failed invocation also being a straggler).
	in := New(Spec{Seed: 11, InvokeFailProb: 0.5, StragglerProb: 0.5})
	both, either := 0, 0
	for i := 0; i < 2000; i++ {
		at := time.Duration(i) * time.Millisecond
		f := in.InvokeFails("w", at)
		s := in.ColdStartFactor("w", at) > 1
		if f || s {
			either++
		}
		if f && s {
			both++
		}
	}
	// Independent 0.5/0.5 draws: both ≈ 25% of trials, either ≈ 75%.
	if both < 350 || both > 650 {
		t.Fatalf("joint count %d suggests correlated domains", both)
	}
	if either < 1300 || either > 1700 {
		t.Fatalf("either count %d implausible", either)
	}
}
