// Package faults is the deterministic fault-injection layer of the
// simulator. The paper's premise is that FaaS training must survive an
// unreliable substrate — 10-minute execution caps, reclaimed containers,
// cold-start jitter (§2, §3.1) — so the simulated services accept an
// optional Injector that perturbs them with the failure modes observed
// on real platforms:
//
//   - transient invocation failures (the FaaS control plane rejects an
//     activation; the client must retry with backoff);
//   - heavy-tailed cold-start stragglers (a Pareto-distributed latency
//     multiplier on the cold-start path);
//   - mid-run container reclamation (the provider withdraws a running
//     container; the worker's in-flight step is lost);
//   - per-operation failures and latency spikes on the KV store and the
//     message broker (retried client-side, costing virtual time).
//
// Every decision is a pure function of the Spec seed and the operation's
// identity (service, operation, key, virtual time), derived through
// internal/xrand. No shared generator state exists, so injection is
// exactly reproducible regardless of how the engine's worker goroutines
// are scheduled: two runs of the same job with the same Spec observe the
// same faults at the same virtual instants.
package faults

import (
	"errors"
	"math"
	"sync"
	"time"

	"mlless/internal/xrand"
)

// ErrInjected marks a failure produced by the injector rather than by a
// configuration or programming error. Callers use errors.Is to decide
// whether an operation is worth retrying.
var ErrInjected = errors.New("faults: injected failure")

// Defaults for the Spec knobs that shape fault magnitude (probabilities
// default to zero: no injection).
const (
	// DefaultStragglerAlpha is the Pareto tail index of the cold-start
	// straggler multiplier; alpha = 1.5 gives a mean multiplier of 3.
	DefaultStragglerAlpha = 1.5
	// DefaultStragglerCap bounds the straggler multiplier so a single
	// draw cannot stall a simulated job indefinitely.
	DefaultStragglerCap = 50.0
	// DefaultReclaimMeanLife is the mean container lifetime when an
	// invocation is marked for reclamation.
	DefaultReclaimMeanLife = 5 * time.Minute
	// DefaultRetryPenalty is the client-side timeout paid per failed KV
	// or broker operation before the retry.
	DefaultRetryPenalty = 50 * time.Millisecond
	// maxOpRetries bounds consecutive per-op failures so a pathological
	// probability cannot loop forever.
	maxOpRetries = 5
	// minReclaimLife keeps drawn container lifetimes positive so a fresh
	// instance always executes at least a moment before dying again.
	minReclaimLife = time.Second
)

// Spec configures fault injection for one job. The zero value disables
// every fault; probabilities are per invocation (FaaS) or per operation
// (KV store, broker).
type Spec struct {
	// Seed drives every injection decision. Two runs with equal Specs
	// observe identical faults.
	Seed uint64

	// InvokeFailProb is the probability that an invocation attempt fails
	// transiently and must be retried by the caller.
	InvokeFailProb float64
	// StragglerProb is the probability that a cold start draws a
	// heavy-tailed latency multiplier.
	StragglerProb float64
	// StragglerAlpha is the Pareto tail index of the multiplier
	// (default 1.5; smaller is heavier-tailed).
	StragglerAlpha float64
	// StragglerCap bounds the multiplier (default 50).
	StragglerCap float64
	// ReclaimProb is the probability that an invocation's container is
	// scheduled for mid-run reclamation.
	ReclaimProb float64
	// ReclaimMeanLife is the mean of the exponentially distributed
	// container lifetime when reclamation is scheduled (default 5 min).
	ReclaimMeanLife time.Duration

	// KVFailProb is the per-operation KV store failure probability; each
	// failed attempt costs KVRetryPenalty plus a re-execution of the op.
	KVFailProb float64
	// KVSlowProb is the per-operation probability of a latency spike.
	KVSlowProb float64
	// KVSlowFactor multiplies the operation's charge on a spike
	// (default 10).
	KVSlowFactor float64
	// KVRetryPenalty is the timeout paid per failed KV attempt
	// (default 50 ms).
	KVRetryPenalty time.Duration

	// MQFailProb, MQSlowProb, MQSlowFactor and MQRetryPenalty mirror the
	// KV knobs for the message broker.
	MQFailProb     float64
	MQSlowProb     float64
	MQSlowFactor   float64
	MQRetryPenalty time.Duration
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.InvokeFailProb > 0 || s.StragglerProb > 0 || s.ReclaimProb > 0 ||
		s.KVFailProb > 0 || s.KVSlowProb > 0 ||
		s.MQFailProb > 0 || s.MQSlowProb > 0
}

// withDefaults fills the magnitude knobs left at zero.
func (s Spec) withDefaults() Spec {
	if s.StragglerAlpha <= 0 {
		s.StragglerAlpha = DefaultStragglerAlpha
	}
	if s.StragglerCap <= 1 {
		s.StragglerCap = DefaultStragglerCap
	}
	if s.ReclaimMeanLife <= 0 {
		s.ReclaimMeanLife = DefaultReclaimMeanLife
	}
	if s.KVSlowFactor <= 1 {
		s.KVSlowFactor = 10
	}
	if s.KVRetryPenalty <= 0 {
		s.KVRetryPenalty = DefaultRetryPenalty
	}
	if s.MQSlowFactor <= 1 {
		s.MQSlowFactor = 10
	}
	if s.MQRetryPenalty <= 0 {
		s.MQRetryPenalty = DefaultRetryPenalty
	}
	return s
}

// Metrics counts the faults an Injector has delivered.
type Metrics struct {
	// InvokeFailures counts transiently failed invocation attempts.
	InvokeFailures int64
	// Stragglers counts cold starts stretched by the heavy-tailed
	// multiplier.
	Stragglers int64
	// ReclaimsScheduled counts invocations given a finite container
	// lifetime (the engine records how many actually died in
	// Result.Recovery).
	ReclaimsScheduled int64
	// KVFailures and KVSlowOps count injected KV store faults.
	KVFailures int64
	KVSlowOps  int64
	// MQFailures and MQSlowOps count injected broker faults.
	MQFailures int64
	MQSlowOps  int64
}

// Injector produces deterministic fault decisions. All methods are safe
// for concurrent use and safe on a nil receiver (a nil *Injector injects
// nothing), so the substrates need no guard at their call sites.
type Injector struct {
	spec Spec

	mu      sync.Mutex
	metrics Metrics
}

// New returns an injector for spec with magnitude defaults applied.
func New(spec Spec) *Injector {
	return &Injector{spec: spec.withDefaults()}
}

// Spec returns the injector's effective (defaulted) spec.
func (in *Injector) Spec() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}

// Metrics returns a snapshot of the injected-fault counters.
func (in *Injector) Metrics() Metrics {
	if in == nil {
		return Metrics{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.metrics
}

// Decision domains keep the random streams of different fault kinds
// independent even for identical keys and times.
const (
	domInvoke uint64 = iota + 1
	domStraggler
	domReclaim
	domKV
	domMQ
)

// rng derives a private generator from the operation's identity. The
// derivation is stateless: equal (domain, key, t) always yield the same
// stream, and distinct operations yield independent streams.
func (in *Injector) rng(domain uint64, key string, t time.Duration) *xrand.RNG {
	// FNV-1a over the key folded with the seed, domain and virtual time,
	// then passed through splitmix64 (inside xrand) for avalanche.
	h := in.spec.Seed ^ 0xcbf29ce484222325
	h = (h ^ domain) * 0x100000001b3
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001b3
	}
	h = (h ^ uint64(t)) * 0x100000001b3
	return xrand.New(h)
}

// InvokeFails decides whether the invocation attempt identified by
// (name, at) fails transiently.
func (in *Injector) InvokeFails(name string, at time.Duration) bool {
	if in == nil || in.spec.InvokeFailProb <= 0 {
		return false
	}
	if !in.rng(domInvoke, name, at).Bernoulli(in.spec.InvokeFailProb) {
		return false
	}
	in.mu.Lock()
	in.metrics.InvokeFailures++
	in.mu.Unlock()
	return true
}

// ColdStartFactor returns the latency multiplier for a cold start: 1
// normally, and a bounded Pareto draw for stragglers.
func (in *Injector) ColdStartFactor(name string, at time.Duration) float64 {
	if in == nil || in.spec.StragglerProb <= 0 {
		return 1
	}
	r := in.rng(domStraggler, name, at)
	if !r.Bernoulli(in.spec.StragglerProb) {
		return 1
	}
	// Pareto(xm=1, alpha): factor = (1-u)^(-1/alpha), capped.
	u := r.Float64()
	factor := math.Pow(1-u, -1/in.spec.StragglerAlpha)
	if factor > in.spec.StragglerCap {
		factor = in.spec.StragglerCap
	}
	in.mu.Lock()
	in.metrics.Stragglers++
	in.mu.Unlock()
	return factor
}

// ReclaimAfter returns how long the container of the invocation
// identified by (name, at) lives before the provider reclaims it, or 0
// if it is never reclaimed.
func (in *Injector) ReclaimAfter(name string, at time.Duration) time.Duration {
	if in == nil || in.spec.ReclaimProb <= 0 {
		return 0
	}
	r := in.rng(domReclaim, name, at)
	if !r.Bernoulli(in.spec.ReclaimProb) {
		return 0
	}
	// Exponential lifetime with the configured mean, floored so a fresh
	// instance always runs for a moment.
	u := r.Float64()
	life := time.Duration(-float64(in.spec.ReclaimMeanLife) * math.Log1p(-u))
	if life < minReclaimLife {
		life = minReclaimLife
	}
	in.mu.Lock()
	in.metrics.ReclaimsScheduled++
	in.mu.Unlock()
	return life
}

// KVDelay returns the extra virtual time the KV store operation (op on
// key, nominally costing base) spends on injected failures and latency
// spikes at virtual time now.
func (in *Injector) KVDelay(op, key string, now, base time.Duration) time.Duration {
	if in == nil || (in.spec.KVFailProb <= 0 && in.spec.KVSlowProb <= 0) {
		return 0
	}
	return in.opDelay(domKV, op, key, now, base,
		in.spec.KVFailProb, in.spec.KVSlowProb, in.spec.KVSlowFactor, in.spec.KVRetryPenalty,
		func(m *Metrics, fails int64, slow bool) {
			m.KVFailures += fails
			if slow {
				m.KVSlowOps++
			}
		})
}

// MQDelay is KVDelay for the message broker.
func (in *Injector) MQDelay(op, queue string, now, base time.Duration) time.Duration {
	if in == nil || (in.spec.MQFailProb <= 0 && in.spec.MQSlowProb <= 0) {
		return 0
	}
	return in.opDelay(domMQ, op, queue, now, base,
		in.spec.MQFailProb, in.spec.MQSlowProb, in.spec.MQSlowFactor, in.spec.MQRetryPenalty,
		func(m *Metrics, fails int64, slow bool) {
			m.MQFailures += fails
			if slow {
				m.MQSlowOps++
			}
		})
}

// opDelay models client-side retries: each failed attempt costs the
// retry penalty plus a re-execution of the operation, and the final
// (successful) attempt may carry a latency spike.
func (in *Injector) opDelay(domain uint64, op, key string, now, base time.Duration,
	failProb, slowProb, slowFactor float64, penalty time.Duration,
	record func(*Metrics, int64, bool)) time.Duration {

	r := in.rng(domain, op+"\x00"+key, now)
	var extra time.Duration
	var fails int64
	for fails < maxOpRetries && failProb > 0 && r.Bernoulli(failProb) {
		fails++
		extra += penalty + base
	}
	slow := slowProb > 0 && r.Bernoulli(slowProb)
	if slow {
		extra += time.Duration(float64(base) * (slowFactor - 1))
	}
	if fails > 0 || slow {
		in.mu.Lock()
		record(&in.metrics, fails, slow)
		in.mu.Unlock()
	}
	return extra
}
