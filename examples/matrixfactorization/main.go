// Matrix factorization: train PMF on MovieLens-shaped ratings and show
// what the ISP significance filter buys — the paper's key optimization
// (§4.1). The example runs the same job under BSP and under ISP with
// v = 0.7 and compares execution time, bytes exchanged, and cost.
package main

import (
	"fmt"
	"log"
	"time"

	"mlless"
)

func main() {
	cfg := mlless.MovieLensConfig{
		Users: 800, Items: 3_000, Ratings: 150_000,
		Rank: 20, NoiseStd: 0.7, SignalStd: 0.8, Seed: 7,
	}
	ds := mlless.GenerateMovieLens(cfg)
	fmt.Printf("dataset: %d ratings, %d users x %d items (mean %.2f)\n\n",
		ds.Len(), ds.NumUsers, ds.NumItems, ds.RatingMean)

	run := func(sync mlless.SyncMode, v float64) *mlless.Result {
		cluster := mlless.NewCluster()
		n := mlless.StageDataset(cluster, ds, "ml", 500, 7)
		job := mlless.Job{
			Spec: mlless.Spec{
				Workers:      12,
				Sync:         sync,
				Significance: v,
				TargetLoss:   0.80,
				MaxSteps:     2000,
			},
			Model:      mlless.NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, 7),
			Optimizer:  mlless.NewNesterov(mlless.Constant(20), 0.9),
			Bucket:     "ml",
			NumBatches: n,
			BatchSize:  500,
		}
		res, err := mlless.Train(cluster, job)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	bsp := run(mlless.BSP, 0)
	isp := run(mlless.ISP, 0.7)

	report := func(name string, r *mlless.Result) {
		fmt.Printf("%-12s converged=%-5v time=%-12v steps=%-5d update-MB=%-8.1f cost=$%.4f\n",
			name, r.Converged, r.ExecTime.Round(time.Millisecond), r.Steps,
			float64(r.TotalUpdateBytes)/1e6, r.Cost.Total)
	}
	report("BSP", bsp)
	report("ISP v=0.7", isp)

	if bsp.ExecTime > 0 && isp.ExecTime > 0 {
		fmt.Printf("\nISP speedup: %.2fx  (traffic reduced %.1fx)\n",
			bsp.ExecTime.Seconds()/isp.ExecTime.Seconds(),
			float64(bsp.TotalUpdateBytes)/float64(isp.TotalUpdateBytes))
	}
}
