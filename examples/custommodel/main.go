// Custom model: implement the mlless.Model interface for a model the
// library does not ship — ridge-regularized linear regression — and
// train it on MLLess. Anything exposing sparse gradients over a flat
// parameter vector can ride the ISP filter and the auto-tuner unchanged.
package main

import (
	"fmt"
	"log"
	"time"

	"mlless"
)

// linReg is linear regression with squared loss over sparse features.
// Parameter layout: weights[0..dim), bias at index dim.
type linReg struct {
	dim    int
	l2     float64
	params mlless.Dense
}

var _ mlless.Model = (*linReg)(nil)

func newLinReg(dim int, l2 float64) *linReg {
	return &linReg{dim: dim, l2: l2, params: make(mlless.Dense, dim+1)}
}

func (m *linReg) Name() string         { return "linreg" }
func (m *linReg) NumParams() int       { return len(m.params) }
func (m *linReg) Params() mlless.Dense { return m.params }

func (m *linReg) predict(x *mlless.Vector) float64 {
	return x.Dot(m.params) + m.params[m.dim]
}

// Gradient returns the averaged squared-error gradient (e·x per sample)
// with active-coordinate L2.
func (m *linReg) Gradient(batch []mlless.Sample) *mlless.Vector {
	g := new(mlless.Vector)
	if len(batch) == 0 {
		return g
	}
	inv := 1 / float64(len(batch))
	for _, s := range batch {
		e := m.predict(s.Features) - s.Label
		s.Features.ForEach(func(i uint32, val float64) {
			g.Add(i, inv*(e*val+m.l2*m.params[i]))
		})
		g.Add(uint32(m.dim), inv*e)
	}
	return g
}

// Loss is root mean squared error.
func (m *linReg) Loss(batch []mlless.Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range batch {
		e := m.predict(s.Features) - s.Label
		sum += e * e
	}
	return sum / float64(len(batch))
}

func (m *linReg) ApplyUpdate(u *mlless.Vector) { m.params.AddSparse(u) }

func (m *linReg) Clone() mlless.Model {
	return &linReg{dim: m.dim, l2: m.l2, params: m.params.Clone()}
}

// GradientWork: a dot and an axpy over ~8 non-zeros per sample.
func (m *linReg) GradientWork(batchSize int) float64 {
	return float64(batchSize) * 8 * 4
}

func (m *linReg) DenseGradientWork(batchSize int) float64 {
	return m.GradientWork(batchSize)*4 + 2*float64(m.NumParams())
}

func main() {
	// Synthetic regression data: y = w*·x + noise over sparse features.
	const dim = 5000
	ds := syntheticRegression(dim, 20_000)

	cluster := mlless.NewCluster()
	n := mlless.StageDataset(cluster, ds, "reg", 400, 3)

	job := mlless.Job{
		Spec: mlless.Spec{
			Workers:      6,
			Sync:         mlless.ISP,
			Significance: 0.5,
			MaxSteps:     400,
		},
		Model:      newLinReg(dim, 1e-4),
		Optimizer:  mlless.NewAdam(mlless.Constant(0.05)),
		Bucket:     "reg",
		NumBatches: n,
		BatchSize:  400,
	}
	res, err := mlless.Train(cluster, job)
	if err != nil {
		log.Fatal(err)
	}
	first, last := res.History[0], res.History[len(res.History)-1]
	fmt.Printf("custom model trained: MSE %.4f -> %.4f over %d steps (%v, $%.4f)\n",
		first.Loss, last.Loss, res.Steps, res.ExecTime.Round(time.Millisecond), res.Cost.Total)
	if last.Loss >= first.Loss {
		log.Fatal("did not converge")
	}
}

// syntheticRegression builds sparse samples with a planted linear model.
func syntheticRegression(dim, samples int) *mlless.Dataset {
	// Small deterministic generator (linear congruential, local to the
	// example).
	state := uint64(42)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
	unif := func() float64 { return float64(next()%1_000_000) / 1_000_000 }

	truth := make([]float64, dim)
	for i := range truth {
		truth[i] = unif()*2 - 1
	}
	out := &mlless.Dataset{FeatureDim: dim}
	for k := 0; k < samples; k++ {
		x := new(mlless.Vector)
		y := 0.0
		for j := 0; j < 8; j++ {
			i := uint32(next() % uint64(dim))
			v := unif()
			x.Set(i, v)
			y += truth[i] * v
		}
		y += (unif() - 0.5) * 0.1 // noise
		out.Samples = append(out.Samples, mlless.Sample{Features: x, Label: y, User: -1, Item: -1})
	}
	return out
}
