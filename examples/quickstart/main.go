// Quickstart: train sparse logistic regression on Criteo-shaped data
// with MLLess and print the convergence trace and the bill.
package main

import (
	"fmt"
	"log"
	"time"

	"mlless"
)

func main() {
	// A simulated deployment: FaaS platform + Redis + broker + object
	// store, with the paper's prices and limits.
	cluster := mlless.NewCluster()

	// Generate a small Criteo-shaped dataset (13 numeric + 26 hashed
	// categorical features) and stage it as mini-batches in object
	// storage, min-max normalizing the numeric features.
	cfg := mlless.DefaultCriteoConfig()
	cfg.Samples = 20_000
	cfg.HashDim = 20_000
	ds := mlless.GenerateCriteo(cfg)
	n := mlless.StageDataset(cluster, ds, "criteo", 500, 1)
	if err := mlless.NormalizeDataset(cluster, "criteo", n, cfg.NumericFeatures); err != nil {
		log.Fatal(err)
	}

	job := mlless.Job{
		Spec: mlless.Spec{
			Workers:      8,
			Sync:         mlless.ISP,
			Significance: 0.7, // the paper's v
			TargetLoss:   0.60,
			MaxSteps:     600,
		},
		Model:      mlless.NewLogReg(ds.FeatureDim, 1e-4),
		Optimizer:  mlless.NewAdam(mlless.Constant(0.02)),
		Bucket:     "criteo",
		NumBatches: n,
		BatchSize:  500,
	}

	res, err := mlless.Train(cluster, job)
	if err != nil {
		log.Fatal(err)
	}

	for i, p := range res.History {
		if i%20 == 0 || i == len(res.History)-1 {
			fmt.Printf("step %4d  t=%-10v  BCE=%.4f\n", p.Step, p.Time.Round(time.Millisecond), p.Loss)
		}
	}
	fmt.Printf("\nconverged=%v in %v over %d steps (final BCE %.4f)\n",
		res.Converged, res.ExecTime.Round(time.Millisecond), res.Steps, res.FinalLoss)
	fmt.Println("\nitemized bill:")
	fmt.Print(res.Cost)
}
