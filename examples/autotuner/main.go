// Auto-tuner: watch the scale-in scheduler (§4.2) shrink the worker
// pool as a PMF job passes the knee of its learning curve, and compare
// cost-efficiency (Perf/$) with the fixed-pool run.
package main

import (
	"fmt"
	"log"
	"time"

	"mlless"
)

func main() {
	cfg := mlless.MovieLensConfig{
		Users: 800, Items: 3_000, Ratings: 150_000,
		Rank: 20, NoiseStd: 0.7, SignalStd: 0.8, Seed: 11,
	}
	ds := mlless.GenerateMovieLens(cfg)

	run := func(tune bool) *mlless.Result {
		cluster := mlless.NewCluster()
		n := mlless.StageDataset(cluster, ds, "ml", 500, 11)
		job := mlless.Job{
			Spec: mlless.Spec{
				Workers:      16,
				Sync:         mlless.ISP,
				Significance: 0.7,
				TargetLoss:   0.74,
				MaxSteps:     3000,
				AutoTune:     tune,
				// Scheduling epoch scaled to this small job; the paper
				// uses T=20s with Δ=10s on its longer-running jobs.
				Sched: mlless.SchedulerConfig{Epoch: 1500 * time.Millisecond},
			},
			Model:      mlless.NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, 11),
			Optimizer:  mlless.NewNesterov(mlless.Constant(20), 0.9),
			Bucket:     "ml",
			NumBatches: n,
			BatchSize:  500,
		}
		res, err := mlless.Train(cluster, job)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fixed := run(false)
	tuned := run(true)

	fmt.Println("auto-tuned run:")
	for _, r := range tuned.Removals {
		fmt.Printf("  t=%-10v evicted worker %2d -> pool %d\n",
			r.Time.Round(time.Millisecond), r.Worker, r.WorkersLeft)
	}
	perf := func(r *mlless.Result) float64 {
		return 1 / (r.ExecTime.Seconds() * r.Cost.Total)
	}
	fmt.Printf("\n%-10s time=%-12v cost=$%-8.4f Perf/$=%.2f\n",
		"fixed", fixed.ExecTime.Round(time.Millisecond), fixed.Cost.Total, perf(fixed))
	fmt.Printf("%-10s time=%-12v cost=$%-8.4f Perf/$=%.2f\n",
		"auto-tuned", tuned.ExecTime.Round(time.Millisecond), tuned.Cost.Total, perf(tuned))
	fmt.Printf("\nPerf/$ gain: %.2fx  (workers %d -> %d)\n",
		perf(tuned)/perf(fixed), 16, tuned.History[len(tuned.History)-1].Workers)
}
