package mlless_test

import (
	"fmt"

	"mlless"
)

// Example trains a tiny PMF job with the ISP significance filter and
// prints whether it reached the target loss. Larger, realistic setups
// are in the examples/ directory.
func Example() {
	cluster := mlless.NewCluster()
	cfg := mlless.MovieLensConfig{
		Users: 100, Items: 400, Ratings: 15_000,
		Rank: 8, NoiseStd: 0.6, SignalStd: 0.8, Seed: 7,
	}
	ds := mlless.GenerateMovieLens(cfg)
	n := mlless.StageDataset(cluster, ds, "ratings", 300, 7)

	job := mlless.Job{
		Spec: mlless.Spec{
			Workers:      4,
			Sync:         mlless.ISP,
			Significance: 0.7,
			TargetLoss:   0.85,
			MaxSteps:     500,
		},
		Model:      mlless.NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, 7),
		Optimizer:  mlless.NewNesterov(mlless.Constant(5), 0.9),
		Bucket:     "ratings",
		NumBatches: n,
		BatchSize:  300,
	}
	res, err := mlless.Train(cluster, job)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("converged:", res.Converged)
	// Output: converged: true
}
