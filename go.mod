module mlless

go 1.22
